// Churn exercises the dynamic cluster model end to end: the same loaded
// trace runs once on a stable cluster and once through a failure scenario
// — a wave of random node failures mid-trace, a central-scheduler outage,
// and a staggered recovery — and the report's churn counters show what the
// re-routing machinery absorbed: probes re-sent, tasks re-executed from
// scratch, executed-but-lost seconds, and central placements parked in the
// backlog while the scheduler was down. Every job still completes; the
// price of the scenario is visible latency, not lost work.
//
// A third run layers the distributed multi-scheduler model (§4.10) on top:
// five schedulers place against stale snapshots while one of them fails and
// recovers mid-trace (ChurnSchedFail / ChurnSchedRecover), and the report's
// conflict counters show the optimistic claim/commit machinery at work.
package main

import (
	"fmt"
	"log"

	"repro/hawk"
	"repro/internal/stats"
)

func main() {
	trace := hawk.Generate(hawk.Google(), hawk.GenConfig{
		NumJobs: 1200, MeanInterArrival: 0.5, Seed: 7,
	})

	stable, err := hawk.Simulate(trace, hawk.NewConfig("hawk",
		hawk.WithNodes(3000), hawk.WithSeed(7)))
	if err != nil {
		log.Fatalf("stable run failed: %v", err)
	}

	// The scenario: 200 random nodes (6.7% of the cluster) fail at t=100 s
	// while the centralized scheduler goes down; the scheduler returns at
	// t=400 s and the nodes trickle back in two waves.
	churned, err := hawk.Simulate(trace, hawk.NewConfig("hawk",
		hawk.WithNodes(3000), hawk.WithSeed(7),
		hawk.WithChurn(
			hawk.ChurnEvent{At: 100, Kind: hawk.ChurnFail, Count: 200},
			hawk.ChurnEvent{At: 100, Kind: hawk.ChurnCentralDown},
			hawk.ChurnEvent{At: 400, Kind: hawk.ChurnCentralUp},
			hawk.ChurnEvent{At: 500, Kind: hawk.ChurnRecover, Count: 100},
			hawk.ChurnEvent{At: 700, Kind: hawk.ChurnRecover, Count: 100},
		)))
	if err != nil {
		log.Fatalf("churn run failed: %v", err)
	}

	// The multi-scheduler scenario: five concurrent schedulers with 30 s
	// snapshot staleness, scheduler 2 failing at t=150 s and rejoining at
	// t=450 s. Jobs it owned re-hash to the survivors.
	multi, err := hawk.Simulate(trace, hawk.NewConfig("hawk",
		hawk.WithNodes(3000), hawk.WithSeed(7),
		hawk.WithSchedulerSpec(hawk.SchedulerSpec{Count: 5, SnapshotInterval: 30}),
		hawk.WithChurn(hawk.SchedulerChurn(2, 150, 450)...)))
	if err != nil {
		log.Fatalf("multi-scheduler run failed: %v", err)
	}

	for _, run := range []struct {
		label string
		res   *hawk.Report
	}{{"stable", stable}, {"churn ", churned}, {"multi ", multi}} {
		res := run.res
		fmt.Printf("%s  short p50 %7.1fs p90 %7.1fs | long p50 %7.1fs | makespan %6.0fs\n",
			run.label,
			stats.Percentile(res.ShortRuntimes(), 50), stats.Percentile(res.ShortRuntimes(), 90),
			stats.Percentile(res.LongRuntimes(), 50), res.Makespan)
	}
	fmt.Println()
	fmt.Printf("scenario damage absorbed (all %d jobs still completed):\n", len(churned.Jobs))
	fmt.Printf("  node failures/recoveries: %d/%d\n", churned.NodeFailures, churned.NodeRecoveries)
	fmt.Printf("  probes lost & re-sent:    %d\n", churned.ProbesLost)
	fmt.Printf("  tasks re-executed:        %d (%.0f s of execution thrown away)\n",
		churned.TasksReexecuted, churned.WorkLostSeconds)
	fmt.Printf("  central backlog:          %d placements deferred over a %.0f s outage\n",
		churned.CentralDeferred, churned.CentralOutageSeconds)

	outageShort := churned.OutageShortRuntimes()
	if len(outageShort) > 0 {
		fmt.Printf("  short jobs submitted during the outage: p50 %.1fs (stealing keeps them flowing)\n",
			stats.Percentile(outageShort, 50))
	}

	fmt.Println()
	fmt.Printf("multi-scheduler run (5 schedulers, one failing mid-trace):\n")
	fmt.Printf("  placement conflicts/retries: %d/%d over %d central assigns\n",
		multi.PlacementConflicts, multi.ConflictRetries, multi.CentralAssigns)
	fmt.Printf("  snapshot refreshes:          %d (%.0f s of staleness at commit)\n",
		multi.SnapshotRefreshes, multi.SnapshotStalenessSeconds)
	fmt.Printf("  scheduler failures/recoveries: %d/%d, %d placements re-assigned\n",
		multi.SchedulerFailures, multi.SchedulerRecoveries, multi.SchedulerReassigned)
}
