// Livecluster runs the goroutine-based prototype — real node-monitor
// goroutines exchanging probe/steal messages and sleeping for task
// durations — on a scaled Google sample, the way the paper runs its Spark
// prototype on a 100-node cluster (§4.10).
//
// Durations are scaled down so the demo completes in under a minute; pass
// -jobs/-scale to trade fidelity for time.
package main

import (
	"flag"
	"fmt"
	"log"

	"repro/hawk"
	"repro/internal/stats"
)

var (
	jobsFlag  = flag.Int("jobs", 300, "jobs in the scaled Google sample")
	nodesFlag = flag.Int("nodes", 100, "node-monitor goroutines")
	scaleFlag = flag.Float64("scale", 2e-4, "task-duration scale factor (1e-3 = paper's sec->ms)")
	loadFlag  = flag.Float64("load", 1.2, "mean inter-arrival as a multiple of mean task runtime")
	seedFlag  = flag.Int64("seed", 42, "random seed")
)

func main() {
	flag.Parse()

	// Build the prototype trace the way the paper does (§4.1): sample the
	// Google workload, cap job widths for the small cluster while keeping
	// task-seconds constant, scale durations down.
	full := hawk.Generate(hawk.Google(), hawk.GenConfig{
		NumJobs:          *jobsFlag,
		MeanInterArrival: 1,
		Seed:             *seedFlag,
	})
	trace := full.CapTasks(*nodesFlag/3).Scale(*scaleFlag, 1)
	trace = trace.WithArrivals(*loadFlag*trace.MeanTaskDuration(), *seedFlag)

	fmt.Printf("live cluster: %d nodes, %d jobs, load factor %.2f\n", *nodesFlag, trace.Len(), *loadFlag)
	fmt.Printf("mean task runtime: %.1f ms; trace spans %.1f s\n\n",
		1000*trace.MeanTaskDuration(), trace.MakespanLowerBound())

	for _, policy := range []string{"sparrow", "hawk"} {
		res, err := hawk.RunLive(trace, hawk.NewConfig(policy,
			hawk.WithNodes(*nodesFlag),
			hawk.WithSchedulers(10),
			hawk.WithSeed(*seedFlag)))
		if err != nil {
			log.Fatalf("live run failed: %v", err)
		}
		short := stats.Summarize(res.ShortRuntimes())
		long := stats.Summarize(res.LongRuntimes())
		fmt.Printf("%-8s wall clock %6.1fs | short p50=%6.0fms p90=%6.0fms | long p50=%6.0fms p90=%6.0fms\n",
			res.Policy, res.Makespan,
			1000*short.P50, 1000*short.P90, 1000*long.P50, 1000*long.P90)
		if policy == "hawk" {
			fmt.Printf("         steals: %d attempts, %d successes, %d entries moved\n",
				res.StealAttempts, res.StealSuccesses, res.EntriesStolen)
		}
	}
}
