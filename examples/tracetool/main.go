// Tracetool demonstrates the trace API: generate each synthetic workload,
// round-trip it through the CSV format, and print the Table 1/2
// characterization — the numbers that motivate Hawk's design.
package main

import (
	"bytes"
	"fmt"
	"log"

	"repro/hawk"
)

func main() {
	fmt.Printf("%-10s %-12s %-14s %-12s %-10s\n",
		"workload", "% long jobs", "% task-secs", "long tasks%", "csv bytes")
	for _, spec := range hawk.AllSpecs() {
		trace := hawk.Generate(spec, hawk.GenConfig{
			NumJobs:          2000,
			MeanInterArrival: 2,
			Seed:             11,
		})

		// Round-trip through the CSV trace format.
		var buf bytes.Buffer
		if err := hawk.WriteTraceCSV(&buf, trace); err != nil {
			log.Fatalf("writing %s: %v", spec.Name, err)
		}
		reloaded, err := hawk.ReadTraceCSV(bytes.NewReader(buf.Bytes()))
		if err != nil {
			log.Fatalf("reading %s back: %v", spec.Name, err)
		}
		if reloaded.Len() != trace.Len() {
			log.Fatalf("%s: round trip lost jobs: %d != %d", spec.Name, reloaded.Len(), trace.Len())
		}

		st := hawk.ComputeStatsByConstruction(reloaded)
		fmt.Printf("%-10s %11.2f%% %13.2f%% %11.2f%% %10d\n",
			spec.Name, st.PctLongJobs, st.PctLongTaskSeconds, st.PctLongTasks, buf.Len())
	}
	fmt.Println("\nEvery workload shows the same pattern: a few long jobs own most of the")
	fmt.Println("resources — the heterogeneity Hawk's hybrid design exploits.")
}
