// Quickstart: generate a small heterogeneous workload, schedule it with
// Hawk and with Sparrow in the trace-driven simulator, and compare the job
// runtime percentiles — the paper's headline comparison in miniature.
package main

import (
	"fmt"
	"log"

	"repro/internal/sim"
	"repro/internal/stats"
	"repro/internal/workload"
)

func main() {
	// A 4000-job synthetic Google-like trace: ~10% long jobs holding
	// ~80% of the work, Poisson arrivals.
	trace := workload.Generate(workload.Google(), workload.GenConfig{
		NumJobs:          4000,
		MeanInterArrival: 2.3,
		Seed:             1,
	})
	st := workload.ComputeStats(trace, trace.Cutoff)
	fmt.Printf("workload: %d jobs, %d tasks; long jobs: %.1f%% of jobs, %.1f%% of task-seconds\n\n",
		st.TotalJobs, st.TotalTasks, st.PctLongJobs, st.PctLongTaskSeconds)

	// A 15000-node cluster is highly loaded (but not saturated) under
	// this arrival rate — the regime where scheduling policy matters most.
	const nodes = 15000
	for _, mode := range []sim.Mode{sim.ModeSparrow, sim.ModeHawk} {
		res, err := sim.Run(trace, sim.Config{NumNodes: nodes, Mode: mode, Seed: 1})
		if err != nil {
			log.Fatalf("simulation failed: %v", err)
		}
		short := stats.Summarize(res.ShortRuntimes())
		long := stats.Summarize(res.LongRuntimes())
		fmt.Printf("%-8s short jobs: p50=%7.0fs p90=%7.0fs | long jobs: p50=%7.0fs p90=%7.0fs\n",
			res.Mode, short.P50, short.P90, long.P50, long.P90)
		if mode == sim.ModeHawk {
			fmt.Printf("         stealing: %d successful steals moved %d queued entries\n",
				res.StealSuccesses, res.EntriesStolen)
		}
	}
	fmt.Println("\nHawk keeps short jobs fast under load by reserving a small partition,")
	fmt.Println("scheduling long jobs centrally, and stealing short tasks stuck behind long ones.")
}
