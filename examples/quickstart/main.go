// Quickstart: generate a small heterogeneous workload, schedule it with
// Hawk and with Sparrow in the trace-driven simulator, and compare the job
// runtime percentiles — the paper's headline comparison in miniature.
//
// Everything here goes through the public repro/hawk API: policies are
// looked up by name in the registry, both runs share one Config shape, and
// results come back as the engine-agnostic Report.
package main

import (
	"fmt"
	"log"

	"repro/hawk"
)

func main() {
	// A 4000-job synthetic Google-like trace: ~10% long jobs holding
	// ~80% of the work, Poisson arrivals.
	trace := hawk.Generate(hawk.Google(), hawk.GenConfig{
		NumJobs:          4000,
		MeanInterArrival: 2.3,
		Seed:             1,
	})
	st := hawk.ComputeStats(trace, trace.Cutoff)
	fmt.Printf("workload: %d jobs, %d tasks; long jobs: %.1f%% of jobs, %.1f%% of task-seconds\n\n",
		st.TotalJobs, st.TotalTasks, st.PctLongJobs, st.PctLongTaskSeconds)

	// A 15000-node cluster is highly loaded (but not saturated) under
	// this arrival rate — the regime where scheduling policy matters most.
	for _, policy := range []string{"sparrow", "hawk"} {
		res, err := hawk.Simulate(trace, hawk.NewConfig(policy,
			hawk.WithNodes(15000), hawk.WithSeed(1)))
		if err != nil {
			log.Fatalf("simulation failed: %v", err)
		}
		fmt.Printf("%-8s short jobs: p50=%7.0fs p90=%7.0fs | long jobs: p50=%7.0fs p90=%7.0fs\n",
			res.Policy, res.Percentile(false, 50), res.Percentile(false, 90),
			res.Percentile(true, 50), res.Percentile(true, 90))
		if policy == "hawk" {
			fmt.Printf("         stealing: %d successful steals moved %d queued entries\n",
				res.StealSuccesses, res.EntriesStolen)
		}
	}
	fmt.Println("\nHawk keeps short jobs fast under load by reserving a small partition,")
	fmt.Println("scheduling long jobs centrally, and stealing short tasks stuck behind long ones.")
}
