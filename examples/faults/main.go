// Faults exercises the gray-failure plane end to end: the same loaded
// trace runs once on a clean network, once through a lossy/jittery RPC
// plane (2% i.i.d. loss on every message class plus delay jitter), and
// once through a scripted straggler wave with speculative re-execution
// armed. The report's fault counters show what the defenses absorbed:
// drops per message class, timeout/backoff retry chains, probes that
// exhausted their retries and degraded to the central queue, and
// duplicate launches racing stragglers. Every job still completes; the
// price of a gray failure is visible latency, not a hang.
package main

import (
	"fmt"
	"log"

	"repro/hawk"
	"repro/internal/stats"
)

func main() {
	trace := hawk.Generate(hawk.Google(), hawk.GenConfig{
		NumJobs: 1200, MeanInterArrival: 0.5, Seed: 7,
	})

	clean, err := hawk.Simulate(trace, hawk.NewConfig("hawk",
		hawk.WithNodes(3000), hawk.WithSeed(7)))
	if err != nil {
		log.Fatalf("clean run failed: %v", err)
	}

	// The lossy scenario: every message class drops i.i.d. at 2%, and
	// delivered messages pick up to 1 ms of extra delay. MaxRetries 8
	// keeps a full retry-chain exhaustion (p^9) out of reach, so the
	// damage shows up as retries and latency rather than fallbacks.
	lossy, err := hawk.Simulate(trace, hawk.NewConfig("hawk",
		hawk.WithNodes(3000), hawk.WithSeed(7),
		hawk.WithFaults(hawk.FaultSpec{
			ProbeLoss: 0.02, ReplyLoss: 0.02, StealLoss: 0.02,
			AssignLoss: 0.02, CommitLoss: 0.02,
			Jitter: 0.001, MaxRetries: 8,
		})))
	if err != nil {
		log.Fatalf("lossy run failed: %v", err)
	}

	// The straggler scenario: 300 nodes (10% of the cluster) silently slow
	// down 8x at t=100 s and recover at t=600 s, with speculative
	// re-execution duplicating any probe-scheduled task still running past
	// the 95th percentile of its job's task durations.
	straggle, err := hawk.Simulate(trace, hawk.NewConfig("hawk",
		hawk.WithNodes(3000), hawk.WithSeed(7),
		hawk.WithStragglers(
			hawk.StragglerEvent{At: 100, Count: 300, Factor: 8},
			hawk.StragglerEvent{At: 600, Count: 300, Factor: 1},
		),
		hawk.WithSpeculation(95)))
	if err != nil {
		log.Fatalf("straggler run failed: %v", err)
	}

	for _, run := range []struct {
		label string
		res   *hawk.Report
	}{{"clean   ", clean}, {"lossy   ", lossy}, {"straggle", straggle}} {
		res := run.res
		fmt.Printf("%s  short p50 %7.1fs p90 %7.1fs | long p50 %7.1fs | makespan %6.0fs\n",
			run.label,
			stats.Percentile(res.ShortRuntimes(), 50), stats.Percentile(res.ShortRuntimes(), 90),
			stats.Percentile(res.LongRuntimes(), 50), res.Makespan)
	}

	fmt.Println()
	d := lossy.MessagesDropped
	fmt.Printf("lossy plane absorbed (all %d jobs still completed):\n", len(lossy.Jobs))
	fmt.Printf("  messages dropped:   %d (probes %d, replies %d, steals %d, assigns %d, commits %d)\n",
		d.Total(), d.Probes, d.Replies, d.Steals, d.Assigns, d.Commits)
	fmt.Printf("  timeouts fired:     %d, re-sends after backoff: %d probe + %d assign\n",
		lossy.ProbeTimeouts, lossy.ProbeRetries, lossy.AssignRetries)
	fmt.Printf("  retry exhaustions:  %d probes degraded to a central placement\n",
		lossy.FallbacksToCentral)

	fmt.Println()
	fmt.Printf("straggler wave (%d slowdowns applied):\n", straggle.StragglerSlowdowns)
	fmt.Printf("  speculative launches: %d — %d won the race (original cancelled), %d wasted\n",
		straggle.SpeculativeLaunches, straggle.SpeculativeWins, straggle.SpeculativeWasted)
}
