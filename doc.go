// Package repro is a from-scratch Go reproduction of "Hawk: Hybrid
// Datacenter Scheduling" (Delgado, Dinu, Kermarrec, Zwaenepoel — USENIX ATC
// 2015).
//
// # Public API
//
// Import repro/hawk. It is the one engine-agnostic scheduling surface:
//
//   - a Policy interface plus a string-keyed registry — "sparrow", "hawk",
//     "centralized", and "split" are registered implementations, and
//     hawk.Register plugs new policies into both engines without engine
//     changes;
//   - one shared hawk.Config (functional options, validation, defaults
//     resolved once) consumed by every engine;
//   - one hawk.Report result schema with CSV and JSON export, so engines
//     compare apples-to-apples.
//
// Two engines execute policies: hawk.Simulate, the trace-driven
// discrete-event simulator of the paper's evaluation (§4.1), and
// hawk.RunLive, a goroutine-per-node prototype runtime in which messages
// and task execution consume real time (§3.8, §4.10). hawk.SimulateSource
// is the simulator's streaming entry point: it consumes a hawk.Source —
// an in-memory trace adapter, an on-demand synthetic generator, or a
// hawk-trace file reader — decoding each job only when it submits, so a
// multi-million-task trace runs in memory proportional to in-flight work.
//
// # What is reproduced
//
// The library implements Hawk's hybrid scheduler — centralized scheduling
// for long jobs, Sparrow-style distributed batch sampling for short jobs, a
// reserved short partition, and randomized work stealing — together with
// every substrate the paper's evaluation depends on: the discrete-event
// cluster simulator, synthetic Google/Cloudera/Facebook/Yahoo workload
// generators, the Sparrow, fully-centralized, and split-cluster baselines,
// and the live prototype runtime.
//
// # Cluster model
//
// Engines schedule against a dynamic cluster model (core.ClusterView):
// the short/general partition, the live membership set, and per-node
// speed factors. A hawk.Config can script the scenarios the paper's
// robustness story depends on — node failures and recoveries (work on a
// failed node is lost and re-routed: probes re-sent, central tasks
// re-assigned, running tasks re-executed), central-scheduler outages
// (placements park in a backlog while probing and stealing keep the
// general partition utilized), and heterogeneous node speeds (a task of
// duration d takes d/speed seconds on its node). Both engines replay the
// same spec — the simulator as typed events on its virtual clock, the
// live prototype on a real-time controller — and runs stay deterministic
// per seed. With no scenario configured the view is static: samplers
// delegate to the dense partition fast path, draws are bit-identical,
// and the golden reports prove churn-free output unchanged.
//
// # Multi-scheduler model
//
// hawk.WithSchedulerSpec layers the paper's distributed multi-scheduler
// evaluation (§4.10 runs ten concurrent Hawk schedulers) on both engines
// in the shared-state optimistic style: each scheduler owns an
// independent mirror of the centralized queue and a stale snapshot of
// the cluster state, refreshed on a configurable cadence; placements are
// optimistic and commit through a versioned per-node claim, with
// conflicts detected and retried under a bounded backoff before a forced
// refresh. Jobs hash-partition over the live schedulers, and scheduler
// failure/recovery rides the churn machinery with a failed scheduler's
// jobs re-hashed to the survivors. The report accounts for the protocol
// (PlacementConflicts, ConflictRetries, SnapshotRefreshes,
// SnapshotStalenessSeconds, SchedulerFailures/Recoveries/Reassigned); a
// one-scheduler spec canonicalizes back to the single-scheduler fast
// path, byte-identical to the golden reports. docs/ARCHITECTURE.md
// documents the commit path; hawkexp -exp multisched sweeps 1–100
// schedulers.
//
// # Layout
//
// internal/policy holds the API implementation (registry, config, report);
// internal/core holds the engine-independent scheduler building blocks
// (estimation, classification, partitioning, probe placement, stealing, the
// centralized waiting-time queue); internal/sim and internal/liverun are
// the engines; internal/sweep fans independent runs out over a bounded
// worker pool (hawk.RunSweep) with results byte-identical to a serial
// loop; internal/workload generates and serializes traces;
// internal/experiments reproduces every table and figure of the paper on
// top of the sweep layer.
//
// See README.md for a tour and a runnable quickstart. The benchmarks in
// bench_test.go regenerate every table and figure of the paper's
// evaluation at a reduced scale; cmd/hawksim, cmd/hawkexp, and cmd/hawkgen
// are the command-line entry points.
//
// # Performance
//
// The simulator is built around a typed-event engine (internal/eventq):
// the event queue stores flat payload structs ordered by (timestamp,
// sequence) and executes them through one dispatch switch, so scheduling
// an event allocates nothing — no per-event closures. Two queue backends
// realize that contract: a hand-rolled binary heap (O(log n) per
// operation) and the simulator's default, a calendar-style ladder
// timeline that bins events by timestamp into bucket rungs and sorts
// lazily on dispatch — amortized O(1) per event, with bucket storage
// recycled through a spare pool so the steady state allocates nothing.
// Both produce the identical dispatch order, byte for byte: the golden
// reports predate the ladder and pass unregenerated, and a differential
// fuzzer (FuzzLadderVsHeap) pins the equivalence. The core state is
// data-oriented: nodes and per-job state live in dense value-slice arenas
// and queue entries and events refer to jobs by int32 arena index, so the
// hot structs are small, pointer-free, and invisible to the garbage
// collector, and each entry caches its job's class in a packed flag byte
// so steal scans read queues linearly. Trace submission is lazily
// chained — each submit event schedules the next — bounding the event
// heap by in-flight state rather than trace length (the engine's
// MaxPending high-water mark pins this in tests). Streamed runs extend
// the bound to the whole pipeline: jobs decode one at a time from a
// hawk.Source, arena slots and Durations arrays recycle through free
// lists at completion, and reports either stream to a per-job sink or
// fold into bounded reservoir aggregates — peak live heap is O(in-flight
// jobs + cluster) regardless of trace length, pinned by test at the
// ≈2M-task scale (BenchmarkStreamGoogleScale). The surrounding hot
// path holds the same line: probe and steal-victim sampling appends into
// per-simulation scratch buffers (randdist.SampleWithoutReplacementInto,
// core.RandomShortIndicesInto), and node FIFO queues and the central
// queue's server heaps recycle their backing arrays. Zero steady-state
// allocation on the submit→probe, steal, and central-assign paths is
// asserted with testing.AllocsPerRun regression tests.
// Simulator output is pinned byte-identical across this work by golden
// report diffs (internal/sim/testdata/golden). See README.md's
// "Performance" section for the measured trajectory.
//
// # Benchmark-regression gate
//
// CI treats simulator performance as a tested invariant: every push to
// main benchmarks SimulatorThroughput, CentralQueue, LargeCluster,
// GoogleScale, StreamGoogleScale, ChurnScale, MultiScheduler,
// FaultInjection, and the eventq EngineHeap/EngineLadder
// micro-benchmarks (-benchmem, -count=5) and uploads the result as a
// BENCH_<sha>.json artifact, and every pull request re-runs the same
// benchmarks on its base commit on the same runner and fails if min ns/op
// regresses by more than 15%, or min allocs/op or min B/op by more than
// 25%. cmd/benchjson does the conversion and comparison.
//
// # Static analysis
//
// The same invariants are enforced at compile time by hawklint
// (internal/lint, built as a go vet -vettool binary by cmd/hawklint):
// //hawk:hotpath functions may not contain allocating constructs,
// //hawk:size and //hawk:nopointers pin the hot structs' layout,
// //hawk:deterministic packages may not touch wall clocks, global
// randomness, the environment, or map iteration order, hot-path
// packages may not import container/heap, container/list, reflect, or
// sort (hot paths hand-roll their comparison sorts instead of paying
// sort's interface boxing and closure allocations),
// and //hawk:exporteddoc packages (the public API surface) must document
// every exported symbol. CI
// runs the suite on every push together with a negative self-test over a
// deliberately-broken fixture. See README.md's "Static analysis" section
// and internal/lint/doc.go for the directive grammar.
package repro
