// Package repro is a from-scratch Go reproduction of "Hawk: Hybrid
// Datacenter Scheduling" (Delgado, Dinu, Kermarrec, Zwaenepoel — USENIX ATC
// 2015).
//
// The library implements Hawk's hybrid scheduler — centralized scheduling
// for long jobs, Sparrow-style distributed batch sampling for short jobs, a
// reserved short partition, and randomized work stealing — together with
// every substrate the paper's evaluation depends on: a discrete-event
// cluster simulator, synthetic Google/Cloudera/Facebook/Yahoo workload
// generators, the Sparrow, fully-centralized, and split-cluster baselines,
// and a live goroutine-based prototype runtime.
//
// See README.md for a tour, DESIGN.md for the system inventory, and
// EXPERIMENTS.md for the paper-vs-measured record. The benchmarks in
// bench_test.go regenerate every table and figure of the paper's
// evaluation at a reduced scale.
package repro
