package repro

// Benchmark harness: one benchmark per table and figure of the paper's
// evaluation. Each benchmark regenerates its artifact at a reduced scale
// (load regimes preserved; see internal/experiments) and reports the
// headline numbers through b.ReportMetric, so
//
//	go test -bench=. -benchmem
//
// prints the same rows/series the paper reports. cmd/hawkexp runs the full
// 20000-job versions; EXPERIMENTS.md records paper-vs-measured values.

import (
	"fmt"
	"testing"

	"repro/internal/experiments"
	"repro/internal/policy"
	"repro/internal/sim"
	"repro/internal/workload"
)

// benchScale keeps each benchmark iteration in the seconds range while
// preserving the paper's load regimes.
var benchScale = experiments.Scale{NumJobs: 4000, Seed: 42, Runs: 1}

func BenchmarkTable1(b *testing.B) {
	for i := 0; i < b.N; i++ {
		rows, err := experiments.Table1(benchScale)
		if err != nil {
			b.Fatal(err)
		}
		for _, r := range rows {
			b.ReportMetric(r.PctLongJobs, "pctLongJobs_"+r.Workload)
			b.ReportMetric(r.PctLongTaskSeconds, "pctTaskSec_"+r.Workload)
		}
	}
}

func BenchmarkTable2(b *testing.B) {
	for i := 0; i < b.N; i++ {
		rows, err := experiments.Table2(benchScale)
		if err != nil {
			b.Fatal(err)
		}
		for _, r := range rows {
			b.ReportMetric(float64(r.TotalJobs), "jobs_"+r.Workload)
		}
	}
}

func BenchmarkFig1(b *testing.B) {
	for i := 0; i < b.N; i++ {
		r, err := experiments.Fig1(benchScale.Seed)
		if err != nil {
			b.Fatal(err)
		}
		b.ReportMetric(100*r.FracOver15000s, "pctShortOver15000s")
		b.ReportMetric(100*r.MedianUtil, "medianUtilPct")
	}
}

func BenchmarkFig4(b *testing.B) {
	for i := 0; i < b.N; i++ {
		data, err := experiments.Fig4(benchScale)
		if err != nil {
			b.Fatal(err)
		}
		for _, d := range data {
			if len(d.LongDur) == 0 {
				b.Fatalf("%s: empty CDF", d.Workload)
			}
		}
		b.ReportMetric(float64(len(data)), "workloads")
	}
}

func BenchmarkFig5(b *testing.B) {
	for i := 0; i < b.N; i++ {
		pts, err := experiments.Fig5(benchScale)
		if err != nil {
			b.Fatal(err)
		}
		for _, p := range pts {
			suffix := fmt.Sprintf("_n%dk", int(p.X)/1000)
			b.ReportMetric(p.ShortP50, "shortP50"+suffix)
			b.ReportMetric(p.LongP50, "longP50"+suffix)
		}
	}
}

func BenchmarkFig6(b *testing.B) {
	// The Facebook sweep reaches 170000 simulated nodes; keep one
	// iteration tractable by reporting only the per-trace extremes.
	for i := 0; i < b.N; i++ {
		series, err := experiments.Fig6(benchScale)
		if err != nil {
			b.Fatal(err)
		}
		for _, s := range series {
			hi := s.Points[0]
			lo := s.Points[len(s.Points)-1]
			b.ReportMetric(hi.ShortP90, "shortP90_loaded_"+s.Workload)
			b.ReportMetric(lo.ShortP90, "shortP90_idle_"+s.Workload)
		}
	}
}

func BenchmarkFig7(b *testing.B) {
	for i := 0; i < b.N; i++ {
		rows, err := experiments.Fig7(benchScale)
		if err != nil {
			b.Fatal(err)
		}
		for _, r := range rows {
			key := map[string]string{
				"w/o centralized": "noCentral",
				"w/o partition":   "noPartition",
				"w/o stealing":    "noStealing",
			}[r.Variant]
			b.ReportMetric(r.ShortP50, "shortP50_"+key)
			b.ReportMetric(r.LongP50, "longP50_"+key)
		}
	}
}

func BenchmarkFig8And9(b *testing.B) {
	for i := 0; i < b.N; i++ {
		pts, err := experiments.Fig8And9(benchScale)
		if err != nil {
			b.Fatal(err)
		}
		for _, p := range pts {
			if p.X == 15000 {
				b.ReportMetric(p.ShortP90, "shortP90_vsCentral_n15k")
				b.ReportMetric(p.LongP50, "longP50_vsCentral_n15k")
			}
		}
	}
}

func BenchmarkFig10And11(b *testing.B) {
	for i := 0; i < b.N; i++ {
		pts, err := experiments.Fig10And11(benchScale)
		if err != nil {
			b.Fatal(err)
		}
		for _, p := range pts {
			if p.X == 15000 {
				b.ReportMetric(p.ShortP50, "shortP50_vsSplit_n15k")
				b.ReportMetric(p.LongP50, "longP50_vsSplit_n15k")
			}
		}
	}
}

func BenchmarkFig12And13(b *testing.B) {
	for i := 0; i < b.N; i++ {
		pts, err := experiments.Fig12And13(benchScale)
		if err != nil {
			b.Fatal(err)
		}
		for _, p := range pts {
			suffix := fmt.Sprintf("_cut%d", int(p.X))
			b.ReportMetric(p.ShortP50, "shortP50"+suffix)
			b.ReportMetric(p.LongP90, "longP90"+suffix)
		}
	}
}

func BenchmarkFig14(b *testing.B) {
	for i := 0; i < b.N; i++ {
		pts, err := experiments.Fig14(benchScale)
		if err != nil {
			b.Fatal(err)
		}
		for _, p := range pts {
			suffix := fmt.Sprintf("_%.0f_%.0f", 10*p.Lo, 10*p.Hi)
			b.ReportMetric(p.LongP50, "longP50"+suffix)
		}
	}
}

func BenchmarkFig15(b *testing.B) {
	for i := 0; i < b.N; i++ {
		pts, err := experiments.Fig15(benchScale)
		if err != nil {
			b.Fatal(err)
		}
		for _, p := range pts {
			if p.Cap == 10 || p.Cap == 250 {
				b.ReportMetric(p.ShortP50, fmt.Sprintf("shortP50_cap%d", p.Cap))
			}
		}
	}
}

func BenchmarkFig16And17(b *testing.B) {
	// The live prototype really sleeps, so this is the slowest benchmark:
	// a trimmed trace and a single high-load point keep one iteration
	// around ten seconds of wall-clock time.
	cfg := experiments.Fig16Config{
		NumJobs:       80,
		NumNodes:      100,
		NumSchedulers: 10,
		DurationScale: 1e-4,
		LoadFactors:   []float64{1},
		Seed:          42,
	}
	for i := 0; i < b.N; i++ {
		pts, err := experiments.Fig16And17(cfg)
		if err != nil {
			b.Fatal(err)
		}
		p := pts[0]
		b.ReportMetric(p.Impl.ShortP50, "implShortP50")
		b.ReportMetric(p.Sim.ShortP50, "simShortP50")
		b.ReportMetric(p.Impl.LongP50, "implLongP50")
		b.ReportMetric(p.Sim.LongP50, "simLongP50")
	}
}

// BenchmarkSimulatorThroughput measures the raw discrete-event simulator:
// events processed per second of wall-clock time on the default Google
// workload at the paper's headline operating point.
func BenchmarkSimulatorThroughput(b *testing.B) {
	trace, err := experiments.GoogleTrace(benchScale)
	if err != nil {
		b.Fatal(err)
	}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		res, err := sim.Run(trace, policy.Config{NumNodes: 15000, Policy: "hawk", Seed: 7})
		if err != nil {
			b.Fatal(err)
		}
		b.ReportMetric(float64(res.Events), "events/op")
	}
}

// BenchmarkGoogleScale is the cluster-scale point the data-oriented core
// exists for: a 50000-job Google trace on the paper's 15000-node headline
// cluster — more than a million tasks through one simulation. At this size
// memory traffic dominates: the node and job arenas, int32 event payloads,
// and lazy chained submission (the event heap stays O(in-flight) instead
// of preloading 50k submit events) are what keep it tractable. Runs in
// CI's benchmark-regression gate alongside SimulatorThroughput,
// LargeCluster, and CentralQueue.
func BenchmarkGoogleScale(b *testing.B) {
	trace, err := experiments.GoogleTrace(experiments.Scale{NumJobs: 50000, Seed: 42})
	if err != nil {
		b.Fatal(err)
	}
	tasks := 0
	for _, j := range trace.Jobs {
		tasks += j.NumTasks()
	}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		res, err := sim.Run(trace, policy.Config{NumNodes: 15000, Policy: "hawk", Seed: 7})
		if err != nil {
			b.Fatal(err)
		}
		b.ReportMetric(float64(res.Events), "events/op")
		b.ReportMetric(float64(tasks), "tasks/op")
	}
}

// BenchmarkStreamGoogleScale is the streaming pipeline's headline point: an
// 80000-job Google workload (≈2.2 million tasks) decoded job by job from a
// GeneratorSource and run with per-job reports discarded, so the simulation
// holds O(in-flight jobs + slots) memory however long the trace — the
// configuration that makes full-Google-trace-length runs tractable. The
// -benchmem bytes/op is the regression gate for that memory bound: it is
// dominated by the fixed arenas (15000 nodes), not the job count. Runs in
// CI's benchmark-regression gate (the GoogleScale pattern matches it); the
// materialized BenchmarkGoogleScale stays as the retained-reports baseline.
func BenchmarkStreamGoogleScale(b *testing.B) {
	src := workload.NewGeneratorSource(workload.Google(), workload.GenConfig{
		NumJobs: 80000, MeanInterArrival: 2.3, Seed: 42,
	})
	tasks := src.Meta().TotalTasks
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		src.Reset()
		res, err := sim.RunSource(src, policy.Config{
			NumNodes: 15000, Policy: "hawk", Seed: 7, DiscardJobReports: true,
		})
		if err != nil {
			b.Fatal(err)
		}
		b.ReportMetric(float64(res.Events), "events/op")
		b.ReportMetric(float64(tasks), "tasks/op")
	}
}

// BenchmarkLargeCluster gates scaling regressions that the 100-node-scale
// figure benchmarks and the default SimulatorThroughput point cannot see:
// a 12000-node cluster under a mixed short/long trace at an operating
// point with heavy work stealing (tens of thousands of steal attempts per
// run), so the steal path — candidate sampling, eligible-group scans,
// queue surgery — dominates alongside raw event dispatch. It runs in CI's
// benchmark-regression gate next to SimulatorThroughput and CentralQueue.
func BenchmarkLargeCluster(b *testing.B) {
	trace := workload.Generate(workload.Google(), workload.GenConfig{
		NumJobs: 3000, MeanInterArrival: 0.5, Seed: 13,
	})
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		res, err := sim.Run(trace, policy.Config{NumNodes: 12000, Policy: "hawk", Seed: 5})
		if err != nil {
			b.Fatal(err)
		}
		b.ReportMetric(float64(res.Events), "events/op")
		b.ReportMetric(float64(res.StealAttempts), "stealAttempts/op")
		b.ReportMetric(float64(res.EntriesStolen), "entriesStolen/op")
	}
}

// BenchmarkChurnScale is BenchmarkLargeCluster's operating point run
// through a rolling-failure scenario: two waves of 600 node failures and
// recoveries (5% of the cluster each) while the steal-heavy trace is in
// flight. It gates the membership-aware dynamic path that the static
// benchmarks never enter — alive-list sampling on every probe and steal,
// incarnation-stamped events, failure re-routing, and the central queue's
// server removal/re-add — so a regression in the dynamic cluster model is
// caught even though the static fast path stays zero-overhead. Runs in
// CI's benchmark-regression gate next to the static benchmarks.
func BenchmarkChurnScale(b *testing.B) {
	trace := workload.Generate(workload.Google(), workload.GenConfig{
		NumJobs: 3000, MeanInterArrival: 0.5, Seed: 13,
	})
	churn := &policy.ChurnSpec{Events: []policy.ChurnEvent{
		{At: 200, Kind: policy.ChurnFail, Count: 600},
		{At: 500, Kind: policy.ChurnRecover, Count: 600},
		{At: 800, Kind: policy.ChurnFail, Count: 600},
		{At: 1100, Kind: policy.ChurnRecover, Count: 600},
	}}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		res, err := sim.Run(trace, policy.Config{NumNodes: 12000, Policy: "hawk", Seed: 5, Churn: churn})
		if err != nil {
			b.Fatal(err)
		}
		b.ReportMetric(float64(res.Events), "events/op")
		b.ReportMetric(float64(res.TasksReexecuted), "reexecuted/op")
		b.ReportMetric(float64(res.StealAttempts), "stealAttempts/op")
	}
}

// BenchmarkMultiScheduler is BenchmarkLargeCluster's operating point run
// under the distributed multi-scheduler model: ten schedulers with stale
// snapshots sharing the 12000-node cluster, so the optimistic claim/commit
// machinery — per-scheduler queue mirrors, SyncFrom rebuilds on every
// snapshot refresh, claim-version checks, conflicted-placement retries —
// runs at scale on top of the ordinary event dispatch. A coarse snapshot
// cadence keeps the schedulers in the mutually-stale regime where conflicts
// actually occur (see internal/experiments.SchedulerSweep). It gates the
// multi-scheduler path in CI's benchmark-regression gate; the N=1
// configuration is identical to BenchmarkLargeCluster's, so the delta
// between the two is the model's overhead.
func BenchmarkMultiScheduler(b *testing.B) {
	trace := workload.Generate(workload.Google(), workload.GenConfig{
		NumJobs: 3000, MeanInterArrival: 0.5, Seed: 13,
	})
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		res, err := sim.Run(trace, policy.Config{
			NumNodes: 12000, Policy: "hawk", Seed: 5,
			Schedulers: &policy.SchedulerSpec{Count: 10, SnapshotInterval: 60},
		})
		if err != nil {
			b.Fatal(err)
		}
		b.ReportMetric(float64(res.Events), "events/op")
		b.ReportMetric(float64(res.PlacementConflicts), "conflicts/op")
		b.ReportMetric(float64(res.SnapshotRefreshes), "refreshes/op")
	}
}

// BenchmarkFaultInjection is BenchmarkLargeCluster's operating point run
// through the gray-failure plane: 1% loss on every message class plus
// delay jitter on the 12000-node steal-heavy trace, so every send draws a
// loss decision and a jitter delay from the fault stream and the dropped
// tail exercises the timeout/backoff retry events. It gates the fault
// plane's overhead in CI's benchmark-regression gate; the fault-free
// configuration is identical to BenchmarkLargeCluster's, so the delta
// between the two is the model's cost.
func BenchmarkFaultInjection(b *testing.B) {
	trace := workload.Generate(workload.Google(), workload.GenConfig{
		NumJobs: 3000, MeanInterArrival: 0.5, Seed: 13,
	})
	faults := &policy.FaultSpec{
		ProbeLoss: 0.01, ReplyLoss: 0.01, StealLoss: 0.01,
		AssignLoss: 0.01, CommitLoss: 0.01, Jitter: 0.001, MaxRetries: 8,
	}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		res, err := sim.Run(trace, policy.Config{NumNodes: 12000, Policy: "hawk", Seed: 5, Faults: faults})
		if err != nil {
			b.Fatal(err)
		}
		b.ReportMetric(float64(res.Events), "events/op")
		b.ReportMetric(float64(res.MessagesDropped.Total()), "dropped/op")
		b.ReportMetric(float64(res.ProbeRetries), "probeRetries/op")
	}
}

// BenchmarkCentralQueue measures the §3.7 priority queue in isolation at
// cluster scale.
func BenchmarkCentralQueue(b *testing.B) {
	trace := workload.Generate(workload.Google(), workload.GenConfig{
		NumJobs: 500, MeanInterArrival: 1, Seed: 1,
	})
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		res, err := sim.Run(trace, policy.Config{NumNodes: 10000, Policy: "centralized", Seed: 1})
		if err != nil {
			b.Fatal(err)
		}
		b.ReportMetric(float64(res.CentralAssigns), "assigns/op")
	}
}

// BenchmarkAblationStealPositions quantifies the §3.6 design argument:
// Figure 3's consecutive-group stealing vs stealing short entries from
// random queue positions, both normalized to Sparrow.
func BenchmarkAblationStealPositions(b *testing.B) {
	for i := 0; i < b.N; i++ {
		rows, err := experiments.AblationStealPosition(benchScale)
		if err != nil {
			b.Fatal(err)
		}
		for _, r := range rows {
			key := "group"
			if r.Policy == "random-positions" {
				key = "random"
			}
			b.ReportMetric(r.ShortP50, "shortP50_"+key)
			b.ReportMetric(r.ShortP90, "shortP90_"+key)
		}
	}
}

// BenchmarkAblationProbeRatio sweeps the batch-sampling probe ratio that
// the paper fixes at 2 on the Sparrow authors' advice (§4.1).
func BenchmarkAblationProbeRatio(b *testing.B) {
	for i := 0; i < b.N; i++ {
		pts, err := experiments.AblationProbeRatio(benchScale)
		if err != nil {
			b.Fatal(err)
		}
		for _, p := range pts {
			b.ReportMetric(p.ShortP50, fmt.Sprintf("shortP50_%s_d%d", p.Policy, p.Ratio))
		}
	}
}
